//! The simulated LLM.
//!
//! `SimLlm` stands in for the paper's `gpt-3.5-turbo-1106` in all three
//! roles the paper prompts it for:
//!
//! 1. **NL2SQL generation** — [`SimLlm::generate_sql`]: a semantic parse
//!    of the question (exact, because questions are generated intent-
//!    first) filtered through a calibrated *comprehension model*: each of
//!    the example's error channels fires independently with a probability
//!    derived from its difficulty weight, the demonstration count, and
//!    any explicit hints present in the prompt.
//! 2. **Feedback-type identification** — [`SimLlm::classify_feedback`]:
//!    the few-shot router of §3.3, simulated as keyword classification
//!    with calibrated noise.
//! 3. **Feedback-conditioned editing** — [`SimLlm::apply_feedback_edit`]:
//!    applying an interpreted clause edit to the previous query, with a
//!    success probability that depends on whether type-matched (routed)
//!    demonstrations were in context.
//!
//! All sampling is derived deterministically from `(config seed, example
//! id, salt)`, so every experiment is reproducible bit-for-bit.

use crate::calibration::Calibration;
use fisql_spider::{ErrorChannel, Example};
use fisql_sqlkit::{apply_edits, EditOp, OpClass, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the simulated LLM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmConfig {
    /// Master seed; all per-call RNG streams derive from it.
    pub seed: u64,
    /// Behavioural constants.
    pub calibration: Calibration,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            seed: 0x515E,
            calibration: Calibration::default(),
        }
    }
}

/// How the generation is being used, which governs how hints and refires
/// behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    /// A first-pass generation from the original question.
    Initial,
    /// A regeneration from a rewritten question (the Query Rewrite
    /// baseline): hints resolve channels only with
    /// [`crate::Calibration::rewrite_hint_efficacy`], and channels refire
    /// with [`crate::Calibration::rewrite_refire_boost`].
    Rewrite,
}

/// A request to generate SQL for a benchmark example.
#[derive(Debug, Clone)]
pub struct GenRequest<'a> {
    /// The example to answer.
    pub example: &'a Example,
    /// Number of in-context demonstrations (0 = zero-shot; Figure 1).
    pub demos: usize,
    /// Extra prompt text (rewritten question, clarifications) scanned for
    /// channel-resolving hints.
    pub hint_text: &'a str,
    /// Distinguishes repeated generations for the same example (the Query
    /// Rewrite baseline regenerates; each attempt re-samples).
    pub salt: u64,
    /// Generation mode.
    pub mode: GenMode,
}

/// The outcome of a generation: the SQL plus which channels fired
/// (recorded for error analysis; the pipeline itself never peeks).
#[derive(Debug, Clone)]
pub struct Generation {
    /// The produced query.
    pub query: Query,
    /// Kinds of the channels that fired (diagnostics only).
    pub fired: Vec<&'static str>,
}

/// The simulated LLM.
#[derive(Debug, Clone)]
pub struct SimLlm {
    /// Configuration.
    pub cfg: LlmConfig,
}

impl SimLlm {
    /// Creates a simulated LLM.
    pub fn new(cfg: LlmConfig) -> Self {
        SimLlm { cfg }
    }

    /// Per-call deterministic RNG.
    fn rng(&self, example_id: usize, salt: u64) -> StdRng {
        let mut h: u64 = 0x9E3779B97F4A7C15;
        for v in [self.cfg.seed, example_id as u64, salt] {
            h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(31);
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        }
        StdRng::seed_from_u64(h)
    }

    /// Deterministic per-(example, channel) latent in [0, 1).
    ///
    /// A channel fires iff its latent is below its firing probability.
    /// Because the latent does not depend on the attempt, an LLM asked the
    /// same question twice makes the *same* mistake — misreadings are
    /// systematic, not sampling noise. This is what defeats the Query
    /// Rewrite baseline in the paper: restating the question mostly
    /// reproduces the misunderstanding.
    fn latent(&self, example_id: usize, channel_idx: usize) -> f64 {
        let mut h: u64 = 0xA0761D6478BD642F;
        for v in [self.cfg.seed, example_id as u64, channel_idx as u64] {
            h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(23);
            h = h.wrapping_mul(0xE7037ED1A0B428DB);
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Generates SQL for an example (role 1). The returned query is the
    /// gold semantics filtered through the comprehension model: each
    /// channel fires iff its sticky latent falls below its firing
    /// probability; fired channels corrupt the parse.
    pub fn generate_sql(&self, req: &GenRequest<'_>) -> Generation {
        let mut rng = self.rng(req.example.id, req.salt);
        let mut fired_channels: Vec<ErrorChannel> = Vec::new();
        let mut fired = Vec::new();
        let cal = &self.cfg.calibration;
        for (ci, wc) in req.example.channels.iter().enumerate() {
            let hinted = channel_resolved_by_text(&wc.channel, req.example, req.hint_text);
            // In rewrite mode a hint only disambiguates with limited
            // efficacy; a hint in an *initial* question (the question
            // itself spelling out the year, say) resolves outright.
            let resolved = hinted
                && (req.mode == GenMode::Initial
                    || rng.gen_bool(cal.rewrite_hint_efficacy.clamp(0.0, 1.0)));
            let mut p = cal.fire_prob(wc.weight, req.demos, resolved);
            let mut u = self.latent(req.example.id, ci);
            if req.mode == GenMode::Rewrite {
                if !resolved {
                    // The merged question is longer and clunkier; unfixed
                    // ambiguities get slightly worse.
                    p = (p * cal.rewrite_refire_boost).min(cal.max_fire_prob);
                }
                // Rephrasing occasionally jolts the model into a genuinely
                // fresh read of this aspect.
                if rng.gen_bool(cal.rewrite_refresh.clamp(0.0, 1.0)) {
                    u = rng.gen::<f64>();
                }
            }
            if u < p.clamp(0.0, 1.0) {
                fired.push(wc.channel.kind());
                fired_channels.push(wc.channel.clone());
            }
        }
        let query = if fired_channels.is_empty() {
            req.example.intent.compile()
        } else {
            fisql_spider::corrupt_many(&req.example.intent, &fired_channels)
        };
        Generation { query, fired }
    }

    /// Classifies feedback into Add/Remove/Edit (role 2, §3.3). The
    /// keyword heuristics emulate the few-shot classifier; calibrated
    /// noise emulates its residual error rate.
    pub fn classify_feedback(&self, utterance: &str, salt: u64) -> OpClass {
        let truth = keyword_route(utterance);
        let mut rng = self.rng(text_hash(utterance) as usize, salt);
        if rng.gen_bool(self.cfg.calibration.router_noise) {
            // Misroute to one of the other two classes.
            let options: Vec<OpClass> = [OpClass::Add, OpClass::Remove, OpClass::Edit]
                .into_iter()
                .filter(|c| *c != truth)
                .collect();
            options[rng.gen_range(0..options.len())]
        } else {
            truth
        }
    }

    /// Applies interpreted feedback edits to the previous query (role 3).
    /// Success probability depends on whether routed, type-matched
    /// demonstrations were provided. On failure the model returns the
    /// previous query unchanged (it "did not understand" the feedback —
    /// the paper's error cause (b)).
    pub fn apply_feedback_edit(
        &self,
        previous: &Query,
        edits: &[EditOp],
        routed: bool,
        example_id: usize,
        salt: u64,
    ) -> Query {
        let p = self.edit_success_prob(routed, false);
        self.apply_feedback_edit_with_prob(previous, edits, p, example_id, salt)
    }

    /// The edit-apply success probability for a routing configuration.
    /// `dynamic` marks dynamically-selected demonstrations (the §5
    /// extension), which add [`Calibration::dynamic_demo_bonus`].
    pub fn edit_success_prob(&self, routed: bool, dynamic: bool) -> f64 {
        let base = if routed {
            self.cfg.calibration.edit_apply_with_routing
        } else {
            self.cfg.calibration.edit_apply_without_routing
        };
        if dynamic && routed {
            (base + self.cfg.calibration.dynamic_demo_bonus).min(1.0)
        } else {
            base
        }
    }

    /// How reliably the model applies a given set of edits, as a
    /// multiplier on the base success probability. Literal substitutions
    /// (years, values, tables) are easy; column swaps are moderate;
    /// structural changes (ordering, grouping, joins) are the hardest.
    pub fn edit_complexity_factor(&self, edits: &[EditOp]) -> f64 {
        let cal = &self.cfg.calibration;
        edits
            .iter()
            .map(|e| match e {
                EditOp::ReplaceTable { .. } => 1.0,
                // Literal-only substitutions (the Figure 5 year edit, value
                // fixes) are the easy case; predicates that change shape or
                // column are moderate.
                EditOp::ReplacePredicate { from, to, .. } => {
                    if literal_only_change(from, to) {
                        1.0
                    } else {
                        cal.moderate_edit_reliability
                    }
                }
                EditOp::AddPredicate { .. }
                | EditOp::RemovePredicate { .. }
                | EditOp::AddSelectItem { .. }
                | EditOp::RemoveSelectItem { .. }
                | EditOp::ReplaceSelectItem { .. } => cal.moderate_edit_reliability,
                EditOp::SetOrderBy { .. }
                | EditOp::SetLimit { .. }
                | EditOp::SetGroupBy { .. }
                | EditOp::SetHaving { .. }
                | EditOp::SetDistinct { .. }
                | EditOp::AddJoin { .. }
                | EditOp::RemoveJoin { .. } => cal.structural_edit_reliability,
                EditOp::ReplaceQuery { .. } => cal.structural_edit_reliability,
            })
            .fold(1.0, |acc, f: f64| acc.min(f))
    }

    /// [`SimLlm::apply_feedback_edit`] with an explicit success
    /// probability.
    pub fn apply_feedback_edit_with_prob(
        &self,
        previous: &Query,
        edits: &[EditOp],
        p: f64,
        example_id: usize,
        salt: u64,
    ) -> Query {
        let mut rng = self.rng(example_id, salt.wrapping_add(0xED17));
        if !rng.gen_bool(p.clamp(0.0, 1.0)) {
            return previous.clone();
        }
        match apply_edits(previous, edits) {
            Ok(q) => q,
            Err(_) => previous.clone(),
        }
    }

    /// The Query Rewrite baseline's paraphrasing step (§4.1): merges the
    /// feedback into the question. The simulated paraphrase is a fluent
    /// concatenation; what matters mechanically is that the feedback's
    /// anchors now appear in the question text and can resolve channels on
    /// regeneration.
    pub fn rewrite_question(&self, question: &str, feedback: &str) -> String {
        let trimmed = question.trim_end_matches(['?', '.', ' ']);
        format!("{trimmed}, given that {feedback}?")
    }
}

/// Whether two expressions differ only in literal values (same shape,
/// same columns and operators).
fn literal_only_change(a: &fisql_sqlkit::Expr, b: &fisql_sqlkit::Expr) -> bool {
    use fisql_sqlkit::ast::Literal;
    fn blank(e: &fisql_sqlkit::Expr) -> fisql_sqlkit::Expr {
        let mut out = e.clone();
        out.walk_mut(&mut |node| {
            if let fisql_sqlkit::Expr::Literal(l) = node {
                *l = Literal::Null;
            }
        });
        out
    }
    blank(a) == blank(b)
}

/// Whether `text` contains an explicit hint that resolves `channel` —
/// i.e. the prompt spells out the information whose absence made the
/// channel possible.
pub fn channel_resolved_by_text(channel: &ErrorChannel, example: &Example, text: &str) -> bool {
    if text.is_empty() {
        return false;
    }
    let lower = text.to_lowercase();
    let mentions = |ident: &str| {
        let human = ident.replace('_', " ").to_lowercase();
        lower.contains(&human) || lower.contains(&ident.to_lowercase())
    };
    match channel {
        ErrorChannel::YearDefault { pred_idx } => {
            // Resolved if the correct year is written out.
            match example.intent.preds.get(*pred_idx).map(|p| &p.kind) {
                Some(fisql_spider::PredKind::MonthWindow { year, .. }) => {
                    lower.contains(&year.to_string())
                }
                _ => false,
            }
        }
        ErrorChannel::ColumnConfusion { proj_idx, .. } => example
            .intent
            .projections
            .get(*proj_idx)
            .map(|p| match p {
                fisql_spider::Projection::Column { column, .. } => mentions(column),
                fisql_spider::Projection::Agg(_) => false,
            })
            .unwrap_or(false),
        ErrorChannel::FilterColumnConfusion { pred_idx, .. } => example
            .intent
            .preds
            .get(*pred_idx)
            .map(|p| mentions(&p.column))
            .unwrap_or(false),
        ErrorChannel::TableConfusion { .. } => mentions(&example.intent.primary),
        ErrorChannel::DropOrderBy | ErrorChannel::WrongOrderDirection => {
            lower.contains("order") || lower.contains("sort")
        }
        ErrorChannel::DropLimit => lower.contains("limit") || lower.contains("top"),
        ErrorChannel::AggConfusion { .. } => {
            lower.contains("count")
                || lower.contains("sum")
                || lower.contains("average")
                || lower.contains("total")
                || lower.contains("minimum")
                || lower.contains("maximum")
        }
        ErrorChannel::ExtraColumn { column } => mentions(column),
        ErrorChannel::MissingColumn { proj_idx } => example
            .intent
            .projections
            .get(*proj_idx)
            .map(|p| match p {
                fisql_spider::Projection::Column { column, .. } => mentions(column),
                fisql_spider::Projection::Agg(_) => false,
            })
            .unwrap_or(false),
        ErrorChannel::DropPredicate { pred_idx } => example
            .intent
            .preds
            .get(*pred_idx)
            .map(|p| mentions(&p.column))
            .unwrap_or(false),
        ErrorChannel::LiteralDrift { pred_idx, .. } => {
            match example.intent.preds.get(*pred_idx).map(|p| &p.kind) {
                Some(fisql_spider::PredKind::Cmp { value, .. }) => {
                    lower.contains(&value.to_string().trim_matches('\'').to_lowercase())
                }
                _ => false,
            }
        }
        ErrorChannel::ComparisonConfusion { .. } => {
            lower.contains("strictly")
                || lower.contains("inclusive")
                || lower.contains("at least")
                || lower.contains("or equal")
        }
        ErrorChannel::MissingJoin { join_idx } => example
            .intent
            .joins
            .get(*join_idx)
            .map(|j| mentions(&j.table))
            .unwrap_or(false),
        ErrorChannel::MissingDistinct => {
            lower.contains("distinct") || lower.contains("duplicate") || lower.contains("unique")
        }
        ErrorChannel::HavingThresholdDrift { .. } => {
            lower.contains("more than") || lower.contains("threshold")
        }
        ErrorChannel::ExtremumFlip => {
            lower.contains("youngest")
                || lower.contains("oldest")
                || lower.contains("smallest")
                || lower.contains("largest")
                || lower.contains("minimum")
                || lower.contains("maximum")
                || lower.contains("lowest")
                || lower.contains("highest")
        }
    }
}

/// Keyword routing: what the few-shot classifier would do on a clean
/// read. Public so the corpus tools can report ground-truth routing
/// confusion matrices.
pub fn keyword_route(utterance: &str) -> OpClass {
    let s = utterance.to_lowercase();
    // Remove cues take precedence: "do not", "without", etc. are strong.
    const REMOVE: &[&str] = &[
        "do not",
        "don't",
        "remove",
        "drop ",
        "without",
        "exclude",
        "no need",
        "not just",
        "get rid",
        "leave out",
        "omit",
    ];
    const ADD: &[&str] = &[
        "also ",
        "add ",
        "include",
        "order the",
        "order them",
        "sort",
        "as well",
        "missing",
        "should also",
        "limit to",
        "only include",
        "only the",
        "restrict",
        "filter",
    ];
    if REMOVE.iter().any(|k| s.contains(k)) {
        return OpClass::Remove;
    }
    if ADD.iter().any(|k| s.contains(k)) {
        return OpClass::Add;
    }
    OpClass::Edit
}

fn text_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_spider::{build_aep, AepConfig};

    fn tiny_corpus() -> fisql_spider::Corpus {
        build_aep(&AepConfig {
            n_examples: 20,
            seed: 3,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let corpus = tiny_corpus();
        let llm = SimLlm::new(LlmConfig::default());
        let e = &corpus.examples[0];
        let req = GenRequest {
            example: e,
            demos: 0,
            hint_text: "",
            salt: 0,
            mode: GenMode::Initial,
        };
        let a = llm.generate_sql(&req);
        let b = llm.generate_sql(&req);
        assert_eq!(a.query, b.query);
        assert_eq!(a.fired, b.fired);
    }

    #[test]
    fn initial_misreadings_are_systematic() {
        // Asking the same question again (different salt, same mode) must
        // reproduce the same misreading — errors are not sampling noise.
        let corpus = tiny_corpus();
        let llm = SimLlm::new(LlmConfig::default());
        for e in &corpus.examples {
            let gen = |salt| {
                fisql_sqlkit::print_query(
                    &llm.generate_sql(&GenRequest {
                        example: e,
                        demos: 0,
                        hint_text: "",
                        salt,
                        mode: GenMode::Initial,
                    })
                    .query,
                )
            };
            assert_eq!(gen(0), gen(99), "example {} resampled", e.id);
        }
    }

    #[test]
    fn rewrite_mode_can_re_roll() {
        // Rewrite regenerations occasionally refresh a latent, so across
        // many error examples at least some outputs change.
        let corpus = tiny_corpus();
        let llm = SimLlm::new(LlmConfig::default());
        let mut changed = 0;
        for e in &corpus.examples {
            let initial = llm.generate_sql(&GenRequest {
                example: e,
                demos: 0,
                hint_text: "",
                salt: 0,
                mode: GenMode::Initial,
            });
            for salt in 0..10 {
                let re = llm.generate_sql(&GenRequest {
                    example: e,
                    demos: 0,
                    hint_text: "",
                    salt: 1000 + salt,
                    mode: GenMode::Rewrite,
                });
                if re.query != initial.query {
                    changed += 1;
                    break;
                }
            }
        }
        assert!(changed > 0, "rewrite regeneration never re-rolls");
    }

    #[test]
    fn hints_resolve_the_year_channel() {
        // Across all examples with a year-default channel, an explicit
        // year in the question must strictly reduce firings. Zero residual
        // makes the resolution absolute for a crisp assertion.
        let corpus = tiny_corpus();
        let llm = SimLlm::new(LlmConfig {
            seed: 7,
            calibration: Calibration {
                resolved_residual: 0.0,
                ..Default::default()
            },
        });
        let count_fired = |hint: &str| {
            corpus
                .examples
                .iter()
                .filter(|e| {
                    llm.generate_sql(&GenRequest {
                        example: e,
                        demos: 0,
                        hint_text: hint,
                        salt: 0,
                        mode: GenMode::Initial,
                    })
                    .fired
                    .contains(&"year-default")
                })
                .count()
        };
        let without = count_fired("");
        let with = count_fired("everything was created in January 2024");
        assert!(
            (without > 0 && with == 0) || without == 0,
            "hint did not reduce year-default firing: {with} vs {without}"
        );
    }

    #[test]
    fn few_shot_reduces_errors() {
        let corpus = tiny_corpus();
        let llm = SimLlm::new(LlmConfig::default());
        let mut zero_errors = 0;
        let mut few_errors = 0;
        for e in &corpus.examples {
            for salt in 0..20 {
                let z = llm.generate_sql(&GenRequest {
                    example: e,
                    demos: 0,
                    hint_text: "",
                    salt,
                    mode: GenMode::Initial,
                });
                let f = llm.generate_sql(&GenRequest {
                    example: e,
                    demos: 5,
                    hint_text: "",
                    salt: salt + 1000,
                    mode: GenMode::Initial,
                });
                zero_errors += z.fired.len();
                few_errors += f.fired.len();
            }
        }
        assert!(few_errors < zero_errors, "{few_errors} !< {zero_errors}");
    }

    #[test]
    fn keyword_routing_matches_table1() {
        assert_eq!(
            keyword_route("order the names in ascending order."),
            OpClass::Add
        );
        assert_eq!(keyword_route("do not give descriptions"), OpClass::Remove);
        assert_eq!(keyword_route("we are in 2024"), OpClass::Edit);
        assert_eq!(
            keyword_route("provide song name instead of singer name"),
            OpClass::Edit
        );
    }

    #[test]
    fn classifier_noise_is_bounded() {
        let llm = SimLlm::new(LlmConfig::default());
        let utterance = "we are in 2024";
        let wrong = (0..500)
            .filter(|salt| llm.classify_feedback(utterance, *salt) != OpClass::Edit)
            .count();
        // router_noise = 6%; allow generous slack.
        assert!(wrong < 80, "router too noisy: {wrong}/500");
        assert!(wrong > 0, "router noise never fires");
    }

    #[test]
    fn apply_feedback_edit_usually_succeeds_with_routing() {
        let llm = SimLlm::new(LlmConfig::default());
        let prev = fisql_sqlkit::parse_query("SELECT a FROM t WHERE y = 2023").unwrap();
        let gold = fisql_sqlkit::parse_query("SELECT a FROM t WHERE y = 2024").unwrap();
        let edits = fisql_sqlkit::diff_queries(&prev, &gold);
        let ok = (0..200)
            .filter(|salt| {
                let out = llm.apply_feedback_edit(
                    &fisql_sqlkit::normalize_query(&prev),
                    &edits,
                    true,
                    1,
                    *salt,
                );
                fisql_sqlkit::structurally_equal(&out, &gold)
            })
            .count();
        assert!(ok > 160, "only {ok}/200 edits applied");
    }

    #[test]
    fn rewrite_appends_feedback() {
        let llm = SimLlm::new(LlmConfig::default());
        let r = llm.rewrite_question(
            "how many audiences were created in January?",
            "we are in 2024",
        );
        assert!(r.contains("January"));
        assert!(r.contains("2024"));
    }
}
