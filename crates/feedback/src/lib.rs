//! # fisql-feedback
//!
//! The simulated user/annotator for the FISQL reproduction: observable-
//! surface feedback generation (paper §4.1's collection protocol),
//! Table 1-style utterances, highlight spans (Figure 9), engagement and
//! misalignment noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod user;
pub mod utterance;

pub use user::{Feedback, SimUser, UserConfig, UserView};
pub use utterance::{verbalize, year_shift_target};
