//! Verbalizing clause edits as natural-language feedback.
//!
//! The simulated user expresses one intended correction per round, in the
//! style of the paper's Table 1 ("order the names in ascending order.",
//! "do not give descriptions", "we are in 2024") and Figure 7 ("Provide
//! song name instead of singer name").

use fisql_sqlkit::ast::{Expr, Literal, SelectItem};
use fisql_sqlkit::{print_expr, EditOp};
use rand::Rng;

/// Detects the Figure 4 "year shift" pattern: a set of predicate edits
/// whose only change is the year inside date (or year-number) literals.
/// Returns the corrected year when every edit fits the pattern.
pub fn year_shift_target(edits: &[EditOp]) -> Option<i64> {
    if edits.is_empty() {
        return None;
    }
    let mut year = None;
    for e in edits {
        let EditOp::ReplacePredicate { from, to, .. } = e else {
            return None;
        };
        let (f, t) = (extract_year(from)?, extract_year(to)?);
        if f == t {
            return None;
        }
        match year {
            None => year = Some(t),
            Some(y) if y == t => {}
            _ => return None,
        }
    }
    year
}

/// Pulls a year out of a comparison against a date string (`'2024-01-01'`)
/// or a bare year number (`2024`).
fn extract_year(e: &Expr) -> Option<i64> {
    let mut found = None;
    e.walk(&mut |node| {
        if found.is_some() {
            return;
        }
        if let Expr::Literal(l) = node {
            match l {
                Literal::String(s) if s.len() >= 4 => {
                    if let Ok(y) = s[..4].parse::<i64>() {
                        if (1900..=2100).contains(&y) {
                            found = Some(y);
                        }
                    }
                }
                Literal::Number(n) if (1900..=2100).contains(n) => {
                    found = Some(*n);
                }
                _ => {}
            }
        }
    });
    found
}

/// Verbalizes a group of edits the user wants to convey in one message.
/// `vague` selects the paper's terse phrasing variants when available.
pub fn verbalize(edits: &[EditOp], vague: bool, rng: &mut impl Rng) -> String {
    if let Some(year) = year_shift_target(edits) {
        return if vague {
            format!("we are in {year}")
        } else {
            format!("change the year to {year}")
        };
    }
    let Some(first) = edits.first() else {
        return String::new();
    };
    verbalize_one(first, vague, rng)
}

fn verbalize_one(edit: &EditOp, vague: bool, rng: &mut impl Rng) -> String {
    match edit {
        EditOp::AddSelectItem { item } => {
            format!("also show the {}", item_phrase(item))
        }
        EditOp::RemoveSelectItem { item, .. } => {
            if vague {
                format!("do not give {}", pluralish(&item_phrase(item)))
            } else {
                format!("remove the {} column", item_phrase(item))
            }
        }
        EditOp::ReplaceSelectItem { from, to, .. } => {
            // Aggregate swaps come out in aggregate words ("I wanted the
            // average age, not the total age"); plain column swaps use the
            // Figure 7 phrasing.
            if let (Some(f), Some(t)) = (agg_phrase(from), agg_phrase(to)) {
                format!("I wanted the {t}, not the {f}")
            } else {
                format!(
                    "provide {} instead of {}",
                    item_phrase(to),
                    item_phrase(from)
                )
            }
        }
        EditOp::SetDistinct { distinct } => {
            if *distinct {
                "remove duplicate rows from the answer".to_string()
            } else {
                "keep all rows, including duplicates".to_string()
            }
        }
        EditOp::ReplaceTable { from, to } => {
            if vague {
                format!("that information lives in {}", humanize(to))
            } else {
                format!("use {} instead of {}", humanize(to), humanize(from))
            }
        }
        EditOp::AddJoin { join } => format!(
            "you need to bring in the {} information",
            humanize(join.factor.binding_name())
        ),
        EditOp::RemoveJoin { join, .. } => format!(
            "there is no need to use {}",
            humanize(join.factor.binding_name())
        ),
        EditOp::AddPredicate { pred } => {
            format!("only include rows where {}", pred_phrase(pred))
        }
        EditOp::RemovePredicate { pred, .. } => {
            if let Some(col) = pred.columns().first() {
                format!("do not filter by {}", humanize(&col.column))
            } else {
                "remove that condition".to_string()
            }
        }
        EditOp::ReplacePredicate { from, to, .. } => {
            // Predicates built around subqueries cannot be spoken as SQL
            // by a non-technical user; extremum flips come out in plain
            // words ("I meant the lowest age").
            if let Some(text) = extremum_phrase(to) {
                return text;
            }
            if vague {
                // Maximally terse: name only the corrected value, like a
                // real user pointing at the wrong number ("change to
                // 2024", Figure 9). Grounding *which* condition is meant
                // is left to the system — or to a highlight.
                match rhs_literal(to) {
                    Some(lit) => format!("it should be {lit}"),
                    None => format!("the condition should be {}", pred_phrase(to)),
                }
            } else {
                format!("change {} to {}", pred_phrase(from), pred_phrase(to))
            }
        }
        EditOp::SetGroupBy { to, .. } => {
            if to.is_empty() {
                "no need to break it down by group".to_string()
            } else {
                format!(
                    "break it down by {}",
                    to.iter()
                        .map(|e| humanize(&print_expr(e)))
                        .collect::<Vec<_>>()
                        .join(" and ")
                )
            }
        }
        EditOp::SetHaving { to, .. } => match to {
            Some(h) => format!("only keep groups where {}", pred_phrase(h)),
            None => "keep all groups".to_string(),
        },
        EditOp::SetOrderBy { to, .. } => {
            if to.is_empty() {
                "no need to sort the results".to_string()
            } else {
                let o = &to[0];
                let dir = if o.desc { "descending" } else { "ascending" };
                // Table 1: "order the names in ascending order."
                let variants = [
                    format!(
                        "order the {} in {dir} order.",
                        pluralish(&humanize(&print_expr(&o.expr)))
                    ),
                    format!("sort by {} ({dir})", humanize(&print_expr(&o.expr))),
                ];
                variants[rng.gen_range(0..variants.len())].clone()
            }
        }
        EditOp::SetLimit { to, .. } => match to {
            Some(l) => format!("only show the top {}", l.count),
            None => "show all rows, not just a few".to_string(),
        },
        EditOp::ReplaceQuery { .. } => "that is not what I asked for".to_string(),
    }
}

/// Spoken form of an aggregate select item ("average age", "number of
/// rows"), or None when the item is not an aggregate call.
fn agg_phrase(item: &SelectItem) -> Option<String> {
    use fisql_sqlkit::ast::Func;
    let SelectItem::Expr {
        expr: Expr::Call {
            func,
            args,
            distinct,
        },
        ..
    } = item
    else {
        return None;
    };
    if !func.is_aggregate() {
        return None;
    }
    let arg = match args.first() {
        Some(Expr::Wildcard) | None => "rows".to_string(),
        Some(e) => humanize(&print_expr(e)),
    };
    let d = if *distinct { "distinct " } else { "" };
    Some(match func {
        Func::Count => format!("number of {d}{arg}"),
        Func::Sum => format!("total {arg}"),
        Func::Avg => format!("average {arg}"),
        Func::Min => format!("minimum {arg}"),
        Func::Max => format!("maximum {arg}"),
        _ => return None,
    })
}

/// Plain-words phrasing for a predicate whose right side is an extremum
/// subquery (`col = (SELECT MIN(col) …)`), or any predicate containing a
/// subquery (which a user cannot utter as SQL).
fn extremum_phrase(to: &Expr) -> Option<String> {
    let mut has_subquery = false;
    let mut agg: Option<(fisql_sqlkit::ast::Func, String)> = None;
    to.walk(&mut |node| {
        if let Expr::Subquery(q) = node {
            has_subquery = true;
            for item in &q.core.items {
                if let SelectItem::Expr {
                    expr: Expr::Call { func, args, .. },
                    ..
                } = item
                {
                    if func.is_aggregate() {
                        let arg = args
                            .first()
                            .map(print_expr)
                            .unwrap_or_else(|| "value".into());
                        agg = Some((*func, humanize(&arg)));
                    }
                }
            }
        }
    });
    if !has_subquery {
        return None;
    }
    use fisql_sqlkit::ast::Func;
    Some(match agg {
        Some((Func::Min, col)) => format!("I meant the one with the lowest {col}"),
        Some((Func::Max, col)) => format!("I meant the one with the highest {col}"),
        Some((_, col)) => format!("the comparison against the {col} looks wrong"),
        None => "that nested condition is not what I meant".to_string(),
    })
}

/// The right-hand literal of a simple comparison, rendered for speech.
fn rhs_literal(e: &Expr) -> Option<String> {
    if let Expr::Binary { right, .. } = e {
        if let Expr::Literal(l) = right.as_ref() {
            return Some(match l {
                Literal::String(s) => format!("'{s}'"),
                other => other.to_string(),
            });
        }
    }
    None
}

/// Surface phrase for a select item.
fn item_phrase(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "all columns".to_string(),
        SelectItem::QualifiedWildcard(t) => format!("all {} columns", humanize(t)),
        SelectItem::Expr { expr, .. } => humanize(&print_expr(expr)),
    }
}

/// Surface phrase for a predicate.
fn pred_phrase(e: &Expr) -> String {
    humanize(&print_expr(e))
}

fn humanize(ident: &str) -> String {
    ident.replace('_', " ")
}

fn pluralish(word: &str) -> String {
    if word.ends_with('s') {
        word.to_string()
    } else {
        format!("{word}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_sqlkit::{diff_queries, parse_query};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn diff(p: &str, g: &str) -> Vec<EditOp> {
        diff_queries(&parse_query(p).unwrap(), &parse_query(g).unwrap())
    }

    #[test]
    fn year_shift_detected_for_figure4() {
        let edits = diff(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
        );
        assert_eq!(year_shift_target(&edits), Some(2024));
        let text = verbalize(&edits, true, &mut rng());
        assert_eq!(text, "we are in 2024");
    }

    #[test]
    fn year_shift_not_detected_for_unrelated_edits() {
        let edits = diff("SELECT a FROM t", "SELECT b FROM t");
        assert_eq!(year_shift_target(&edits), None);
        let edits = diff("SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2");
        assert_eq!(year_shift_target(&edits), None);
    }

    #[test]
    fn figure7_phrasing_for_column_replacement() {
        let edits = diff(
            "SELECT name, song_release_year FROM singer",
            "SELECT song_name, song_release_year FROM singer",
        );
        let text = verbalize(&edits, false, &mut rng());
        assert_eq!(text, "provide song name instead of name");
    }

    #[test]
    fn table1_remove_phrasing() {
        let edits = diff("SELECT name, description FROM t", "SELECT name FROM t");
        let text = verbalize(&edits, true, &mut rng());
        assert_eq!(text, "do not give descriptions");
    }

    #[test]
    fn table1_add_order_phrasing() {
        let edits = diff("SELECT name FROM t", "SELECT name FROM t ORDER BY name ASC");
        let text = verbalize(&edits, false, &mut rng());
        assert!(
            text.contains("order the names in ascending order")
                || text.contains("sort by name (ascending)"),
            "{text}"
        );
    }

    #[test]
    fn add_predicate_phrasing() {
        let edits = diff("SELECT a FROM t", "SELECT a FROM t WHERE status = 'active'");
        let text = verbalize(&edits, false, &mut rng());
        assert!(text.contains("only include rows where"), "{text}");
        assert!(text.contains("active"), "{text}");
    }

    #[test]
    fn replace_table_phrasing() {
        let edits = diff("SELECT a FROM t1", "SELECT a FROM t2");
        let text = verbalize(&edits, false, &mut rng());
        assert_eq!(text, "use t2 instead of t1");
    }

    #[test]
    fn rewrite_is_vague() {
        let edits = diff("SELECT a FROM t", "SELECT a FROM t UNION SELECT b FROM s");
        let text = verbalize(&edits, false, &mut rng());
        assert_eq!(text, "that is not what I asked for");
    }

    #[test]
    fn empty_edit_list_is_empty_text() {
        assert_eq!(verbalize(&[], false, &mut rng()), "");
    }
}
