//! The simulated user/annotator.
//!
//! Mirrors the paper's feedback-collection protocol (§4.1): the annotator
//! sees only what the tool shows — question, generated SQL, its NL
//! explanation, and the execution result (Figure 7) — never the gold SQL
//! or the schema internals. They know what they *meant* (they asked the
//! question), so their feedback targets the gap between intention and
//! observed behaviour, expressed in surface vocabulary.
//!
//! Three realities of the paper's data are modelled:
//!
//! - **Partial annotatability.** Only ~41% of SPIDER errors received
//!   feedback; users disengage when the output is too far gone or the
//!   needed fix is inexpressible without SQL knowledge.
//! - **One correction per round.** Feedback addresses the most salient
//!   problem; multi-error queries need multiple rounds (paper error
//!   cause (a), Figure 8).
//! - **Misalignment.** Sometimes the feedback does not match the needed
//!   correction (paper error cause (c)).

use crate::utterance::{verbalize, year_shift_target};
use fisql_spider::Example;
use fisql_sqlkit::{diff_queries, normalize_query, EditOp, OpClass, Query, Span, SpannedSql};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the user sees before giving feedback (paper Figure 7).
#[derive(Debug, Clone)]
pub struct UserView {
    /// The original question.
    pub question: String,
    /// The generated SQL, rendered with clause spans.
    pub sql: SpannedSql,
    /// The Assistant's step-by-step explanation.
    pub explanation: String,
    /// Rendered execution result, or the error message.
    pub result: Result<String, String>,
}

/// One round of user feedback.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Feedback {
    /// The natural-language feedback text.
    pub text: String,
    /// Optional highlight over the rendered SQL (Figure 9).
    pub highlight: Option<Span>,
    /// The edits this feedback is *about* (diagnostics; the pipeline must
    /// not read this — it re-derives the edit from the text).
    pub intended: Vec<EditOp>,
    /// Whether the feedback was deliberately misaligned (diagnostics).
    pub misaligned: bool,
}

/// Simulated-user configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserConfig {
    /// Master seed.
    pub seed: u64,
    /// Probability of giving misaligned feedback (error cause (c)).
    pub p_misalign: f64,
    /// Probability of using the terser/vaguer phrasing variant.
    pub p_vague: f64,
    /// Probability the user engages at all on first contact with an
    /// error (calibrates the ~41% annotatability of §4.1).
    pub p_engage: f64,
    /// Probability the user can articulate a whole-query ("Rewrite")
    /// problem at all.
    pub p_express_rewrite: f64,
    /// Errors with more edits than this overwhelm the user.
    pub max_visible_edits: usize,
    /// Probability a highlight accompanies the feedback when the
    /// interface supports it (Table 3 mode).
    pub p_highlight: f64,
}

impl Default for UserConfig {
    fn default() -> Self {
        UserConfig {
            seed: 0x05E4,
            p_misalign: 0.08,
            p_vague: 0.55,
            p_engage: 0.43,
            p_express_rewrite: 0.18,
            max_visible_edits: 4,
            p_highlight: 0.75,
        }
    }
}

/// The simulated user.
#[derive(Debug, Clone)]
pub struct SimUser {
    /// Configuration.
    pub cfg: UserConfig,
}

impl SimUser {
    /// Creates a simulated user.
    pub fn new(cfg: UserConfig) -> Self {
        SimUser { cfg }
    }

    fn rng(&self, example_id: usize, round: u64) -> StdRng {
        let mut h: u64 = 0x2545F4914F6CDD1D;
        for v in [self.cfg.seed, example_id as u64, round] {
            h ^= v.wrapping_add(0x9E3779B97F4A7C15).rotate_left(17);
            h = h.wrapping_mul(0xD6E8FEB86659FD93);
        }
        StdRng::seed_from_u64(h)
    }

    /// Produces this round's feedback on `predicted`, or `None` when the
    /// user is satisfied (no behavioural diff) or disengaged.
    ///
    /// `view` is accepted to honour the information boundary of the
    /// protocol: everything the user *reacts to* is in the view; the diff
    /// against gold stands in for their private knowledge of what they
    /// meant.
    pub fn feedback(
        &self,
        example: &Example,
        predicted: &Query,
        view: &UserView,
        round: u64,
    ) -> Option<Feedback> {
        let _ = view;
        let edits = diff_queries(predicted, &example.gold);
        if edits.is_empty() {
            return None;
        }
        let mut rng = self.rng(example.id, round);

        // Engagement gate (first round only — a user who engaged keeps
        // engaging, matching the paper's multi-round protocol).
        if round == 0 && !rng.gen_bool(self.cfg.p_engage) {
            return None;
        }
        // Overwhelmed by too many visible problems.
        if edits.len() > self.cfg.max_visible_edits {
            return None;
        }
        // Whole-query restructurings are rarely expressible without SQL
        // knowledge.
        if edits.iter().all(|e| e.class() == OpClass::Rewrite)
            && !rng.gen_bool(self.cfg.p_express_rewrite)
        {
            return None;
        }

        // Misalignment: the user misdiagnoses and asks for something
        // else.
        if rng.gen_bool(self.cfg.p_misalign) {
            let decoy = decoy_edit(predicted, &mut rng);
            let text = verbalize(
                std::slice::from_ref(&decoy),
                rng.gen_bool(self.cfg.p_vague),
                &mut rng,
            );
            return Some(Feedback {
                text,
                highlight: None,
                intended: vec![],
                misaligned: true,
            });
        }

        // Group the year-shift pattern into one utterance (Figure 4: one
        // "we are in 2024" covers both WHERE bounds).
        let year_group: Vec<EditOp> = edits
            .iter()
            .filter(|e| matches!(e, EditOp::ReplacePredicate { .. }))
            .cloned()
            .collect();
        let chosen: Vec<EditOp> =
            if !year_group.is_empty() && year_shift_target(&year_group).is_some() {
                year_group
            } else {
                // Most salient expressible edit.
                let mut ranked: Vec<&EditOp> = edits.iter().collect();
                ranked.sort_by_key(|e| salience_rank(e));
                vec![ranked[0].clone()]
            };

        let vague = rng.gen_bool(self.cfg.p_vague);
        let text = verbalize(&chosen, vague, &mut rng);
        if text.is_empty() {
            return None;
        }
        Some(Feedback {
            text,
            highlight: None,
            intended: chosen,
            misaligned: false,
        })
    }

    /// Attaches a highlight to existing feedback (Table 3's interface
    /// mode): the user highlights the rendered span of the clause their
    /// feedback targets, with probability [`UserConfig::p_highlight`].
    pub fn add_highlight(
        &self,
        feedback: &mut Feedback,
        spanned: &SpannedSql,
        example_id: usize,
        round: u64,
    ) {
        let mut rng = self.rng(example_id, round.wrapping_add(0x41));
        if feedback.intended.is_empty() || !rng.gen_bool(self.cfg.p_highlight) {
            return;
        }
        let clause = feedback.intended[0].clause();
        if let Some(span) = spanned.span_of(&clause) {
            feedback.highlight = Some(span);
        } else if let Some((_, span)) = spanned.spans.first() {
            // Fall back to highlighting *something* plausible.
            feedback.highlight = Some(*span);
        }
    }
}

/// How quickly a user notices each kind of problem from the observable
/// surface (lower = noticed first).
fn salience_rank(e: &EditOp) -> u8 {
    match e {
        // Wrong table usually means an execution error or absurd output.
        EditOp::ReplaceTable { .. } => 0,
        EditOp::AddJoin { .. } | EditOp::RemoveJoin { .. } => 1,
        // Wrong filters produce empty/wrong counts — very visible.
        EditOp::ReplacePredicate { .. } => 2,
        // Wrong projected column shows wrong values.
        EditOp::ReplaceSelectItem { .. } => 2,
        EditOp::AddPredicate { .. } | EditOp::RemovePredicate { .. } => 3,
        EditOp::SetGroupBy { .. } | EditOp::SetHaving { .. } => 4,
        EditOp::AddSelectItem { .. } | EditOp::RemoveSelectItem { .. } => 4,
        EditOp::SetOrderBy { .. } | EditOp::SetLimit { .. } => 5,
        EditOp::SetDistinct { .. } => 6,
        EditOp::ReplaceQuery { .. } => 9,
    }
}

/// Fabricates a plausible-but-unneeded edit for misaligned feedback.
fn decoy_edit(predicted: &Query, rng: &mut impl Rng) -> EditOp {
    let norm = normalize_query(predicted);
    match rng.gen_range(0..3) {
        0 => EditOp::SetOrderBy {
            from: norm.order_by.clone(),
            to: vec![],
        },
        1 => EditOp::SetLimit {
            from: norm.limit,
            to: Some(fisql_sqlkit::LimitClause::new(10)),
        },
        _ => EditOp::SetDistinct {
            distinct: !norm.core.distinct,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_spider::{build_aep, AepConfig, Corpus};
    use fisql_sqlkit::{parse_query, print_query_spanned};

    fn corpus() -> Corpus {
        build_aep(&AepConfig {
            n_examples: 30,
            seed: 9,
        })
    }

    fn view_for(example: &Example, predicted: &Query) -> UserView {
        UserView {
            question: example.question.clone(),
            sql: print_query_spanned(predicted),
            explanation: String::new(),
            result: Ok(String::new()),
        }
    }

    fn eager_user() -> SimUser {
        SimUser::new(UserConfig {
            p_engage: 1.0,
            p_misalign: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn satisfied_user_gives_no_feedback() {
        let c = corpus();
        let e = &c.examples[0];
        let user = eager_user();
        let fb = user.feedback(e, &e.gold, &view_for(e, &e.gold), 0);
        assert!(fb.is_none());
    }

    #[test]
    fn flagship_example_yields_year_feedback() {
        let c = corpus();
        let e = &c.examples[0]; // the Figure 4 flagship
        let wrong = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap();
        let user = eager_user();
        let fb = user
            .feedback(e, &wrong, &view_for(e, &wrong), 0)
            .expect("feedback expected");
        assert!(fb.text.contains("2024"), "{}", fb.text);
        assert_eq!(fb.intended.len(), 2, "covers both WHERE bounds");
        assert!(!fb.misaligned);
    }

    #[test]
    fn feedback_is_deterministic() {
        let c = corpus();
        let e = &c.examples[0];
        let wrong = parse_query("SELECT COUNT(*) FROM hkg_dim_segment").unwrap();
        let user = eager_user();
        let a = user.feedback(e, &wrong, &view_for(e, &wrong), 0).unwrap();
        let b = user.feedback(e, &wrong, &view_for(e, &wrong), 0).unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn engagement_gate_filters_some_errors() {
        let c = corpus();
        let user = SimUser::new(UserConfig {
            p_engage: 0.5,
            ..Default::default()
        });
        let wrong = parse_query("SELECT COUNT(*) FROM hkg_dim_segment").unwrap();
        let engaged = c
            .examples
            .iter()
            .filter(|e| !fisql_sqlkit::structurally_equal(&wrong, &e.gold))
            .filter(|e| user.feedback(e, &wrong, &view_for(e, &wrong), 0).is_some())
            .count();
        let total = c.examples.len();
        assert!(engaged > 0 && engaged < total, "{engaged}/{total}");
    }

    #[test]
    fn later_rounds_skip_engagement_gate() {
        let c = corpus();
        let user = SimUser::new(UserConfig {
            p_engage: 0.0, // never engages on round 0
            p_misalign: 0.0,
            ..Default::default()
        });
        let e = &c.examples[0];
        let wrong = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap();
        assert!(user.feedback(e, &wrong, &view_for(e, &wrong), 0).is_none());
        assert!(user.feedback(e, &wrong, &view_for(e, &wrong), 1).is_some());
    }

    #[test]
    fn misaligned_feedback_has_no_intended_edits() {
        let c = corpus();
        let user = SimUser::new(UserConfig {
            p_engage: 1.0,
            p_misalign: 1.0,
            ..Default::default()
        });
        let e = &c.examples[0];
        let wrong = parse_query("SELECT COUNT(*) FROM hkg_dim_segment").unwrap();
        let fb = user.feedback(e, &wrong, &view_for(e, &wrong), 0).unwrap();
        assert!(fb.misaligned);
        assert!(fb.intended.is_empty());
        assert!(!fb.text.is_empty());
    }

    #[test]
    fn highlight_lands_on_target_clause() {
        let c = corpus();
        let e = &c.examples[0];
        let wrong = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap();
        let user = SimUser::new(UserConfig {
            p_engage: 1.0,
            p_misalign: 0.0,
            p_highlight: 1.0,
            ..Default::default()
        });
        let spanned = print_query_spanned(&fisql_sqlkit::normalize_query(&wrong));
        let mut fb = user.feedback(e, &wrong, &view_for(e, &wrong), 0).unwrap();
        user.add_highlight(&mut fb, &spanned, e.id, 0);
        let hl = fb.highlight.expect("highlight present");
        // The highlight covers a WHERE-clause region mentioning the date.
        let covered = hl.slice(&spanned.text);
        assert!(covered.contains("2023"), "highlight covered `{covered}`");
    }

    #[test]
    fn overwhelming_diffs_disengage() {
        let c = corpus();
        let user = eager_user();
        // A completely unrelated query yields a Rewrite-class diff, which
        // is rarely expressible.
        let e = &c.examples[0];
        let nonsense = parse_query(
            "SELECT platform_type FROM hkg_dim_destination \
             UNION SELECT status FROM hkg_dim_dataset",
        )
        .unwrap();
        let got: Vec<bool> = (0..20)
            .map(|r| {
                user.feedback(e, &nonsense, &view_for(e, &nonsense), r)
                    .is_some()
            })
            .collect();
        // Sometimes expressible (p_express_rewrite), usually not.
        assert!(got.iter().filter(|b| **b).count() < 15);
    }
}
